#include "nestedloop/nested_loop.h"

#include <gtest/gtest.h>

#include "storage/builder.h"

namespace bryql {
namespace {

Database UniversityDb() {
  Database db;
  db.Put("student", UnaryStrings({"ann", "bob", "cal"}));
  db.Put("lecture", StringPairs({{"l1", "db"}, {"l2", "db"}, {"l3", "ai"}}));
  db.Put("attends", StringPairs({{"ann", "l1"},
                                 {"ann", "l2"},
                                 {"ann", "l3"},
                                 {"bob", "l1"},
                                 {"cal", "l3"}}));
  db.Put("enrolled", StringPairs({{"ann", "cs"}, {"bob", "cs"},
                                  {"cal", "math"}}));
  return db;
}

Query Q(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << " -> " << q.status();
  return q.ok() ? *q : Query{};
}

bool Closed(const Database& db, const std::string& text) {
  NestedLoopEvaluator eval(&db);
  auto r = eval.EvaluateClosed(Q(text).formula);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return r.ok() && *r;
}

Relation Open(const Database& db, const std::string& text) {
  NestedLoopEvaluator eval(&db);
  auto r = eval.EvaluateOpen(Q(text));
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return r.ok() ? *r : Relation(0);
}

TEST(NestedLoopTest, ClosedExistential) {
  Database db = UniversityDb();
  EXPECT_TRUE(Closed(db, "exists x: student(x)"));
  EXPECT_TRUE(Closed(db, "exists x: student(x) & attends(x, l1)"));
  EXPECT_FALSE(Closed(db, "exists x: student(x) & attends(x, l9)"));
}

TEST(NestedLoopTest, ClosedUniversal) {
  Database db = UniversityDb();
  // Every student attends some lecture.
  EXPECT_TRUE(Closed(
      db, "forall x: student(x) -> (exists y: attends(x, y))"));
  // Not every student attends l1.
  EXPECT_FALSE(Closed(db, "forall x: student(x) -> attends(x, l1)"));
}

TEST(NestedLoopTest, PaperRunningExample) {
  Database db = UniversityDb();
  // There is a student attending all db lectures (ann), and every student
  // attends at least one lecture.
  EXPECT_TRUE(Closed(
      db,
      "(exists x: student(x) & (forall y: lecture(y, db) -> attends(x, y)))"
      " & (forall z1: student(z1) -> (exists z2: attends(z1, z2)))"));
}

TEST(NestedLoopTest, OpenQueryCollectsAllAnswers) {
  Database db = UniversityDb();
  Relation r = Open(db, "{ x | student(x) & attends(x, l1) }");
  EXPECT_EQ(r, UnaryStrings({"ann", "bob"}));
}

TEST(NestedLoopTest, OpenQueryWithNegation) {
  Database db = UniversityDb();
  Relation r = Open(db, "{ x | student(x) & ~enrolled(x, cs) }");
  EXPECT_EQ(r, UnaryStrings({"cal"}));
}

TEST(NestedLoopTest, OpenQueryUniversalFilter) {
  // Students attending all db lectures.
  Database db = UniversityDb();
  Relation r = Open(
      db,
      "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }");
  EXPECT_EQ(r, UnaryStrings({"ann"}));
}

TEST(NestedLoopTest, OpenQueryDisjunctiveFilter) {
  Database db = UniversityDb();
  Relation r = Open(
      db, "{ x | student(x) & (attends(x, l2) | enrolled(x, math)) }");
  EXPECT_EQ(r, UnaryStrings({"ann", "cal"}));
}

TEST(NestedLoopTest, DisjunctiveRangeDeduplicates) {
  Database db = UniversityDb();
  // ann appears via both disjuncts but only once in the answer.
  Relation r =
      Open(db, "{ x | (student(x) | enrolled(x, cs)) & attends(x, l1) }");
  EXPECT_EQ(r, UnaryStrings({"ann", "bob"}));
}

TEST(NestedLoopTest, ExistentialStopsEarly) {
  // Figure 1a: the loop stops at the first witness.
  Database db;
  Relation big(1);
  for (int i = 0; i < 1000; ++i) big.Insert(Ints({i}));
  db.Put("big", big);
  NestedLoopEvaluator eval(&db);
  auto r = eval.EvaluateClosed(Q("exists x: big(x)").formula);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  EXPECT_EQ(eval.stats().tuples_scanned, 1u);
}

TEST(NestedLoopTest, UniversalStopsAtCounterexample) {
  // Figure 1b: the loop stops at the first counterexample.
  Database db;
  Relation big(1);
  for (int i = 0; i < 1000; ++i) big.Insert(Ints({i}));
  db.Put("big", big);
  db.Put("even", UnaryInts({0}));
  NestedLoopEvaluator eval(&db);
  auto r = eval.EvaluateClosed(
      Q("forall x: big(x) -> even(x)").formula);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  EXPECT_LE(eval.stats().tuples_scanned, 2u);
}

TEST(NestedLoopTest, ComparisonsInQueries) {
  Database db = UniversityDb();
  EXPECT_TRUE(Closed(db, "exists x y: attends(x, y) & y != l1"));
  Relation r = Open(db, "{ x | student(x) & x = ann }");
  EXPECT_EQ(r, UnaryStrings({"ann"}));
}

TEST(NestedLoopTest, UnsafeQueryRejected) {
  Database db = UniversityDb();
  NestedLoopEvaluator eval(&db);
  auto r = eval.EvaluateClosed(Q("exists x: ~student(x)").formula);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(NestedLoopTest, ClosedRequiresClosedFormula) {
  Database db = UniversityDb();
  NestedLoopEvaluator eval(&db);
  auto f = ParseFormula("student(x)", {"x"});
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(eval.EvaluateClosed(*f).ok());
}

TEST(NestedLoopTest, MissingRelationIsNotFound) {
  Database db;
  NestedLoopEvaluator eval(&db);
  auto r = eval.EvaluateClosed(Q("exists x: ghost(x)").formula);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bryql
