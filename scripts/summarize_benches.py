#!/usr/bin/env python3
"""Summarizes bench_output.txt into per-experiment comparison tables.

Usage: python3 scripts/summarize_benches.py [bench_output.txt]

Groups benchmark lines by binary family (the BM_ prefix up to the first
'/') and prints time plus the paper's cost counters side by side, so the
EXPERIMENTS.md tables can be regenerated from a fresh run.
"""
import re
import sys
from collections import defaultdict

LINE = re.compile(
    r"^(BM_\w+)/([\w/]+)\s+(\d+(?:\.\d+)?) us\s+\d+(?:\.\d+)? us\s+\d+"
    r"\s*(.*)$")
COUNTER = re.compile(r"(\w+)=([\d.]+[kMG]?)")


def parse(path):
    rows = []
    for line in open(path, encoding="utf-8"):
        m = LINE.match(line.strip())
        if not m:
            continue
        name, args, time_us, rest = m.groups()
        counters = dict(COUNTER.findall(rest))
        label = rest.split()[-1] if rest and "=" not in rest.split()[-1] \
            else ""
        rows.append({
            "bench": name,
            "args": args,
            "us": float(time_us),
            "label": label,
            **counters,
        })
    return rows


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    rows = parse(path)
    if not rows:
        print("no benchmark lines found in", path)
        return 1
    by_bench = defaultdict(list)
    for r in rows:
        by_bench[r["bench"]].append(r)
    for bench in sorted(by_bench):
        print(f"\n== {bench}")
        print(f"{'args':<16} {'time':>12} {'scanned':>12} {'cmp':>12} "
              f"{'probes':>12} {'answers':>9}  label")
        for r in by_bench[bench]:
            print(f"{r['args']:<16} {r['us']:>10.0f}us "
                  f"{r.get('scanned', '-'):>12} "
                  f"{r.get('comparisons', '-'):>12} "
                  f"{r.get('probes', '-'):>12} "
                  f"{r.get('answers', '-'):>9}  {r.get('label', '')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
