#!/usr/bin/env bash
# Tier-1 verification, five times:
#   1. the plain configuration (what CI and benchmarks use),
#   2. a Release (-O2 -DNDEBUG) configuration running the full suite —
#      the vectorized columnar kernels only show their real codegen with
#      optimization on, and the row/columnar differential suite must
#      hold there too, and
#   3. an ASan+UBSan configuration with failpoints compiled in, so the
#      fault-injection stress tests actually run and every injected
#      failure path is checked for leaks and UB, and
#   4. a TSan configuration running the parallel-execution and service
#      tests, so the morsel-driven runtime's sharing (morsel dispensers,
#      shared builds, sharded seen-sets, budget reconciliation) and the
#      service layer's admission/retry machinery are race-checked, and
#   5. a chaos sweep: the seeded fault-injection harness re-run across
#      fixed seeds against the failpoints build, asserting every reply
#      under randomized faults is either the fault-free oracle answer or
#      a clean retryable error.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== [1/5] plain build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== [2/5] Release (-O2 -DNDEBUG) build + tests =="
cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-rel -j "$JOBS"
ctest --test-dir build-rel --output-on-failure -j "$JOBS"

echo "== [3/5] sanitized build (address;undefined) + failpoints + tests =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBRYQL_SANITIZE="address;undefined" \
  -DBRYQL_FAILPOINTS=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== [4/5] thread-sanitized build + parallel/service tests =="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBRYQL_SANITIZE="thread" \
  -DBRYQL_FAILPOINTS=ON >/dev/null
cmake --build build-tsan -j "$JOBS"
# The parallel suite exercises every shared structure; plan-cache and
# prepared-query tests cover the concurrent QueryProcessor paths; the
# service and chaos suites cover admission, retry and fault injection
# under 8-way client concurrency.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'parallel|plan_cache|prepared|service'

echo "== [5/5] chaos seed sweep (failpoints build) =="
cmake -B build-chaos -S . -DBRYQL_FAILPOINTS=ON >/dev/null
cmake --build build-chaos -j "$JOBS" --target chaos_service_test
# Each seed fully determines the fault schedule; a failing seed
# reproduces with BRYQL_CHAOS_SEED=<seed> ./build-chaos/tests/chaos_service_test
for seed in 7 42 1989 4242 24601 99991 123456789 987654321; do
  echo "-- chaos seed $seed --"
  BRYQL_CHAOS_SEED="$seed" ./build-chaos/tests/chaos_service_test
done

echo "All checks passed."
