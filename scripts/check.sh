#!/usr/bin/env bash
# Tier-1 verification, three times:
#   1. the plain release configuration (what CI and benchmarks use),
#   2. an ASan+UBSan configuration with failpoints compiled in, so the
#      fault-injection stress tests actually run and every injected
#      failure path is checked for leaks and UB, and
#   3. a TSan configuration running the parallel-execution tests, so the
#      morsel-driven runtime's sharing (morsel dispensers, shared builds,
#      sharded seen-sets, budget reconciliation) is race-checked.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== [1/3] plain build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== [2/3] sanitized build (address;undefined) + failpoints + tests =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBRYQL_SANITIZE="address;undefined" \
  -DBRYQL_FAILPOINTS=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== [3/3] thread-sanitized build + parallel tests =="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBRYQL_SANITIZE="thread" >/dev/null
cmake --build build-tsan -j "$JOBS"
# The parallel suite exercises every shared structure; plan-cache and
# prepared-query tests cover the concurrent QueryProcessor paths.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'parallel|plan_cache|prepared'

echo "All checks passed."
