#!/usr/bin/env bash
# Tier-1 verification, twice:
#   1. the plain release configuration (what CI and benchmarks use), and
#   2. an ASan+UBSan configuration with failpoints compiled in, so the
#      fault-injection stress tests actually run and every injected
#      failure path is checked for leaks and UB.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== [1/2] plain build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== [2/2] sanitized build (address;undefined) + failpoints + tests =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBRYQL_SANITIZE="address;undefined" \
  -DBRYQL_FAILPOINTS=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "All checks passed."
