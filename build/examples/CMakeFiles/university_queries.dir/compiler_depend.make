# Empty compiler generated dependencies file for university_queries.
# This may be replaced when dependencies are built.
