file(REMOVE_RECURSE
  "CMakeFiles/university_queries.dir/university_queries.cpp.o"
  "CMakeFiles/university_queries.dir/university_queries.cpp.o.d"
  "university_queries"
  "university_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
