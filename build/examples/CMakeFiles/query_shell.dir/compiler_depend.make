# Empty compiler generated dependencies file for query_shell.
# This may be replaced when dependencies are built.
