file(REMOVE_RECURSE
  "CMakeFiles/query_shell.dir/query_shell.cpp.o"
  "CMakeFiles/query_shell.dir/query_shell.cpp.o.d"
  "query_shell"
  "query_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
