file(REMOVE_RECURSE
  "CMakeFiles/integrity_constraints.dir/integrity_constraints.cpp.o"
  "CMakeFiles/integrity_constraints.dir/integrity_constraints.cpp.o.d"
  "integrity_constraints"
  "integrity_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrity_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
