# Empty compiler generated dependencies file for integrity_constraints.
# This may be replaced when dependencies are built.
