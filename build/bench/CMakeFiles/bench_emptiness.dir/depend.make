# Empty dependencies file for bench_emptiness.
# This may be replaced when dependencies are built.
