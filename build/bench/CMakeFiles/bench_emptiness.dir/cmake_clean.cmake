file(REMOVE_RECURSE
  "CMakeFiles/bench_emptiness.dir/bench_emptiness.cc.o"
  "CMakeFiles/bench_emptiness.dir/bench_emptiness.cc.o.d"
  "bench_emptiness"
  "bench_emptiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emptiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
