file(REMOVE_RECURSE
  "CMakeFiles/bench_miniscope.dir/bench_miniscope.cc.o"
  "CMakeFiles/bench_miniscope.dir/bench_miniscope.cc.o.d"
  "bench_miniscope"
  "bench_miniscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_miniscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
