# Empty compiler generated dependencies file for bench_miniscope.
# This may be replaced when dependencies are built.
