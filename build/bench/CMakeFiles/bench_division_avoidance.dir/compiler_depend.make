# Empty compiler generated dependencies file for bench_division_avoidance.
# This may be replaced when dependencies are built.
