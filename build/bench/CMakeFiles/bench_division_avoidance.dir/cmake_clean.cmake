file(REMOVE_RECURSE
  "CMakeFiles/bench_division_avoidance.dir/bench_division_avoidance.cc.o"
  "CMakeFiles/bench_division_avoidance.dir/bench_division_avoidance.cc.o.d"
  "bench_division_avoidance"
  "bench_division_avoidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_division_avoidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
