file(REMOVE_RECURSE
  "CMakeFiles/bench_complement_join.dir/bench_complement_join.cc.o"
  "CMakeFiles/bench_complement_join.dir/bench_complement_join.cc.o.d"
  "bench_complement_join"
  "bench_complement_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complement_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
