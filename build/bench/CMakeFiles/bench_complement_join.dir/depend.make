# Empty dependencies file for bench_complement_join.
# This may be replaced when dependencies are built.
