# Empty compiler generated dependencies file for bench_join_algorithms.
# This may be replaced when dependencies are built.
