file(REMOVE_RECURSE
  "CMakeFiles/bench_join_algorithms.dir/bench_join_algorithms.cc.o"
  "CMakeFiles/bench_join_algorithms.dir/bench_join_algorithms.cc.o.d"
  "bench_join_algorithms"
  "bench_join_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
