# Empty dependencies file for bench_rewrite.
# This may be replaced when dependencies are built.
