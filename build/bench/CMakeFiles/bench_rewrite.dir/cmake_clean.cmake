file(REMOVE_RECURSE
  "CMakeFiles/bench_rewrite.dir/bench_rewrite.cc.o"
  "CMakeFiles/bench_rewrite.dir/bench_rewrite.cc.o.d"
  "bench_rewrite"
  "bench_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
