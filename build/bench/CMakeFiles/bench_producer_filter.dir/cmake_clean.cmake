file(REMOVE_RECURSE
  "CMakeFiles/bench_producer_filter.dir/bench_producer_filter.cc.o"
  "CMakeFiles/bench_producer_filter.dir/bench_producer_filter.cc.o.d"
  "bench_producer_filter"
  "bench_producer_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_producer_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
