# Empty dependencies file for bench_producer_filter.
# This may be replaced when dependencies are built.
