file(REMOVE_RECURSE
  "CMakeFiles/bench_disjunctive_filter.dir/bench_disjunctive_filter.cc.o"
  "CMakeFiles/bench_disjunctive_filter.dir/bench_disjunctive_filter.cc.o.d"
  "bench_disjunctive_filter"
  "bench_disjunctive_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disjunctive_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
