# Empty dependencies file for bench_disjunctive_filter.
# This may be replaced when dependencies are built.
