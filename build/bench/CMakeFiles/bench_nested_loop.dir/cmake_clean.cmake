file(REMOVE_RECURSE
  "CMakeFiles/bench_nested_loop.dir/bench_nested_loop.cc.o"
  "CMakeFiles/bench_nested_loop.dir/bench_nested_loop.cc.o.d"
  "bench_nested_loop"
  "bench_nested_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nested_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
