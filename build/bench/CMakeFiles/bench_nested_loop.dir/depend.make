# Empty dependencies file for bench_nested_loop.
# This may be replaced when dependencies are built.
