# Empty dependencies file for classical_test.
# This may be replaced when dependencies are built.
