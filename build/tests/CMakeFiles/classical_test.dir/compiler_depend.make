# Empty compiler generated dependencies file for classical_test.
# This may be replaced when dependencies are built.
