file(REMOVE_RECURSE
  "CMakeFiles/classical_test.dir/classical_test.cc.o"
  "CMakeFiles/classical_test.dir/classical_test.cc.o.d"
  "classical_test"
  "classical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
