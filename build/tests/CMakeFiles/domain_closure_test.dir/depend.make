# Empty dependencies file for domain_closure_test.
# This may be replaced when dependencies are built.
