file(REMOVE_RECURSE
  "CMakeFiles/domain_closure_test.dir/domain_closure_test.cc.o"
  "CMakeFiles/domain_closure_test.dir/domain_closure_test.cc.o.d"
  "domain_closure_test"
  "domain_closure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
