# Empty dependencies file for algebra_property_test.
# This may be replaced when dependencies are built.
