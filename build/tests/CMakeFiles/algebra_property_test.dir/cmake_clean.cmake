file(REMOVE_RECURSE
  "CMakeFiles/algebra_property_test.dir/algebra_property_test.cc.o"
  "CMakeFiles/algebra_property_test.dir/algebra_property_test.cc.o.d"
  "algebra_property_test"
  "algebra_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
