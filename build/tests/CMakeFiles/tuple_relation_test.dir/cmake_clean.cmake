file(REMOVE_RECURSE
  "CMakeFiles/tuple_relation_test.dir/tuple_relation_test.cc.o"
  "CMakeFiles/tuple_relation_test.dir/tuple_relation_test.cc.o.d"
  "tuple_relation_test"
  "tuple_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
