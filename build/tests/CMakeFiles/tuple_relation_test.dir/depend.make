# Empty dependencies file for tuple_relation_test.
# This may be replaced when dependencies are built.
