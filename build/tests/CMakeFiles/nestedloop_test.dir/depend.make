# Empty dependencies file for nestedloop_test.
# This may be replaced when dependencies are built.
