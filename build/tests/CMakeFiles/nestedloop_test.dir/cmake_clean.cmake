file(REMOVE_RECURSE
  "CMakeFiles/nestedloop_test.dir/nestedloop_test.cc.o"
  "CMakeFiles/nestedloop_test.dir/nestedloop_test.cc.o.d"
  "nestedloop_test"
  "nestedloop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestedloop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
