file(REMOVE_RECURSE
  "CMakeFiles/simplifier_test.dir/simplifier_test.cc.o"
  "CMakeFiles/simplifier_test.dir/simplifier_test.cc.o.d"
  "simplifier_test"
  "simplifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
