# Empty dependencies file for simplifier_test.
# This may be replaced when dependencies are built.
