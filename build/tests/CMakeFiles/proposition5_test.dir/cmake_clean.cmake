file(REMOVE_RECURSE
  "CMakeFiles/proposition5_test.dir/proposition5_test.cc.o"
  "CMakeFiles/proposition5_test.dir/proposition5_test.cc.o.d"
  "proposition5_test"
  "proposition5_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proposition5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
