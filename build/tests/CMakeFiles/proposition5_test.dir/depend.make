# Empty dependencies file for proposition5_test.
# This may be replaced when dependencies are built.
