# Empty dependencies file for range_analysis_test.
# This may be replaced when dependencies are built.
