file(REMOVE_RECURSE
  "CMakeFiles/range_analysis_test.dir/range_analysis_test.cc.o"
  "CMakeFiles/range_analysis_test.dir/range_analysis_test.cc.o.d"
  "range_analysis_test"
  "range_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
