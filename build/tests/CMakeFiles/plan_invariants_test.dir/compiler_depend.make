# Empty compiler generated dependencies file for plan_invariants_test.
# This may be replaced when dependencies are built.
