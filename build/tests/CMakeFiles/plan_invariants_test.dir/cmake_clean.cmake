file(REMOVE_RECURSE
  "CMakeFiles/plan_invariants_test.dir/plan_invariants_test.cc.o"
  "CMakeFiles/plan_invariants_test.dir/plan_invariants_test.cc.o.d"
  "plan_invariants_test"
  "plan_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
