# Empty compiler generated dependencies file for rewrite_property_test.
# This may be replaced when dependencies are built.
