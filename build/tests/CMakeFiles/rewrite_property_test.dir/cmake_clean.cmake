file(REMOVE_RECURSE
  "CMakeFiles/rewrite_property_test.dir/rewrite_property_test.cc.o"
  "CMakeFiles/rewrite_property_test.dir/rewrite_property_test.cc.o.d"
  "rewrite_property_test"
  "rewrite_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
