file(REMOVE_RECURSE
  "CMakeFiles/database_csv_test.dir/database_csv_test.cc.o"
  "CMakeFiles/database_csv_test.dir/database_csv_test.cc.o.d"
  "database_csv_test"
  "database_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
