
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/database_csv_test.cc" "tests/CMakeFiles/database_csv_test.dir/database_csv_test.cc.o" "gcc" "tests/CMakeFiles/database_csv_test.dir/database_csv_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bryql_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bryql_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/bryql_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/nestedloop/CMakeFiles/bryql_nestedloop.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/bryql_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/bryql_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/bryql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/calculus/CMakeFiles/bryql_calculus.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bryql_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bryql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
