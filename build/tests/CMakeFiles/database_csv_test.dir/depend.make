# Empty dependencies file for database_csv_test.
# This may be replaced when dependencies are built.
