# Empty compiler generated dependencies file for sort_merge_test.
# This may be replaced when dependencies are built.
