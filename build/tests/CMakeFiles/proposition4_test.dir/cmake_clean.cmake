file(REMOVE_RECURSE
  "CMakeFiles/proposition4_test.dir/proposition4_test.cc.o"
  "CMakeFiles/proposition4_test.dir/proposition4_test.cc.o.d"
  "proposition4_test"
  "proposition4_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proposition4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
