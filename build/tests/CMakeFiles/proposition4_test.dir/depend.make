# Empty dependencies file for proposition4_test.
# This may be replaced when dependencies are built.
