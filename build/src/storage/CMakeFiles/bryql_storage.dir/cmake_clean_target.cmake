file(REMOVE_RECURSE
  "libbryql_storage.a"
)
