file(REMOVE_RECURSE
  "CMakeFiles/bryql_storage.dir/builder.cc.o"
  "CMakeFiles/bryql_storage.dir/builder.cc.o.d"
  "CMakeFiles/bryql_storage.dir/csv.cc.o"
  "CMakeFiles/bryql_storage.dir/csv.cc.o.d"
  "CMakeFiles/bryql_storage.dir/database.cc.o"
  "CMakeFiles/bryql_storage.dir/database.cc.o.d"
  "CMakeFiles/bryql_storage.dir/relation.cc.o"
  "CMakeFiles/bryql_storage.dir/relation.cc.o.d"
  "CMakeFiles/bryql_storage.dir/tuple.cc.o"
  "CMakeFiles/bryql_storage.dir/tuple.cc.o.d"
  "libbryql_storage.a"
  "libbryql_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bryql_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
