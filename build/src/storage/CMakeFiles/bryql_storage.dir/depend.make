# Empty dependencies file for bryql_storage.
# This may be replaced when dependencies are built.
