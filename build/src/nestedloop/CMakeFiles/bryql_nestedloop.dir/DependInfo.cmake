
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nestedloop/nested_loop.cc" "src/nestedloop/CMakeFiles/bryql_nestedloop.dir/nested_loop.cc.o" "gcc" "src/nestedloop/CMakeFiles/bryql_nestedloop.dir/nested_loop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calculus/CMakeFiles/bryql_calculus.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/bryql_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/bryql_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bryql_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bryql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
