file(REMOVE_RECURSE
  "libbryql_nestedloop.a"
)
