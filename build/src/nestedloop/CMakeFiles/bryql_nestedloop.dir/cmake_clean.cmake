file(REMOVE_RECURSE
  "CMakeFiles/bryql_nestedloop.dir/nested_loop.cc.o"
  "CMakeFiles/bryql_nestedloop.dir/nested_loop.cc.o.d"
  "libbryql_nestedloop.a"
  "libbryql_nestedloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bryql_nestedloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
