# Empty dependencies file for bryql_nestedloop.
# This may be replaced when dependencies are built.
