# Empty dependencies file for bryql_common.
# This may be replaced when dependencies are built.
