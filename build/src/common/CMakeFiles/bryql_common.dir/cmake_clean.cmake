file(REMOVE_RECURSE
  "CMakeFiles/bryql_common.dir/status.cc.o"
  "CMakeFiles/bryql_common.dir/status.cc.o.d"
  "CMakeFiles/bryql_common.dir/str_util.cc.o"
  "CMakeFiles/bryql_common.dir/str_util.cc.o.d"
  "CMakeFiles/bryql_common.dir/value.cc.o"
  "CMakeFiles/bryql_common.dir/value.cc.o.d"
  "libbryql_common.a"
  "libbryql_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bryql_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
