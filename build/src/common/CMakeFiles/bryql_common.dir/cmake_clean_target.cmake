file(REMOVE_RECURSE
  "libbryql_common.a"
)
