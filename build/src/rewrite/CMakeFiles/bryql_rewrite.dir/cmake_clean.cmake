file(REMOVE_RECURSE
  "CMakeFiles/bryql_rewrite.dir/domain_closure.cc.o"
  "CMakeFiles/bryql_rewrite.dir/domain_closure.cc.o.d"
  "CMakeFiles/bryql_rewrite.dir/rewriter.cc.o"
  "CMakeFiles/bryql_rewrite.dir/rewriter.cc.o.d"
  "libbryql_rewrite.a"
  "libbryql_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bryql_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
