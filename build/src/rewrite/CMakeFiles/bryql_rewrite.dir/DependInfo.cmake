
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/domain_closure.cc" "src/rewrite/CMakeFiles/bryql_rewrite.dir/domain_closure.cc.o" "gcc" "src/rewrite/CMakeFiles/bryql_rewrite.dir/domain_closure.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "src/rewrite/CMakeFiles/bryql_rewrite.dir/rewriter.cc.o" "gcc" "src/rewrite/CMakeFiles/bryql_rewrite.dir/rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calculus/CMakeFiles/bryql_calculus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bryql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
