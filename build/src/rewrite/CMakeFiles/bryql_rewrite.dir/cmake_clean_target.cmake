file(REMOVE_RECURSE
  "libbryql_rewrite.a"
)
