# Empty dependencies file for bryql_rewrite.
# This may be replaced when dependencies are built.
