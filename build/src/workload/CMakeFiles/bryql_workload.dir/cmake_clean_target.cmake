file(REMOVE_RECURSE
  "libbryql_workload.a"
)
