file(REMOVE_RECURSE
  "CMakeFiles/bryql_workload.dir/university.cc.o"
  "CMakeFiles/bryql_workload.dir/university.cc.o.d"
  "libbryql_workload.a"
  "libbryql_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bryql_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
