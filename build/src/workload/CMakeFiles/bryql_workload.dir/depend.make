# Empty dependencies file for bryql_workload.
# This may be replaced when dependencies are built.
