file(REMOVE_RECURSE
  "CMakeFiles/bryql_exec.dir/executor.cc.o"
  "CMakeFiles/bryql_exec.dir/executor.cc.o.d"
  "CMakeFiles/bryql_exec.dir/sort_merge.cc.o"
  "CMakeFiles/bryql_exec.dir/sort_merge.cc.o.d"
  "libbryql_exec.a"
  "libbryql_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bryql_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
