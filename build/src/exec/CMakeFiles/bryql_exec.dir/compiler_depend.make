# Empty compiler generated dependencies file for bryql_exec.
# This may be replaced when dependencies are built.
