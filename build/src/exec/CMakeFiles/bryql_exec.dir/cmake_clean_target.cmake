file(REMOVE_RECURSE
  "libbryql_exec.a"
)
