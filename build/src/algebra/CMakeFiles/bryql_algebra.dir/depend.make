# Empty dependencies file for bryql_algebra.
# This may be replaced when dependencies are built.
