
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/cost_model.cc" "src/algebra/CMakeFiles/bryql_algebra.dir/cost_model.cc.o" "gcc" "src/algebra/CMakeFiles/bryql_algebra.dir/cost_model.cc.o.d"
  "/root/repo/src/algebra/expr.cc" "src/algebra/CMakeFiles/bryql_algebra.dir/expr.cc.o" "gcc" "src/algebra/CMakeFiles/bryql_algebra.dir/expr.cc.o.d"
  "/root/repo/src/algebra/predicate.cc" "src/algebra/CMakeFiles/bryql_algebra.dir/predicate.cc.o" "gcc" "src/algebra/CMakeFiles/bryql_algebra.dir/predicate.cc.o.d"
  "/root/repo/src/algebra/simplifier.cc" "src/algebra/CMakeFiles/bryql_algebra.dir/simplifier.cc.o" "gcc" "src/algebra/CMakeFiles/bryql_algebra.dir/simplifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/bryql_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/calculus/CMakeFiles/bryql_calculus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bryql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
