file(REMOVE_RECURSE
  "CMakeFiles/bryql_algebra.dir/cost_model.cc.o"
  "CMakeFiles/bryql_algebra.dir/cost_model.cc.o.d"
  "CMakeFiles/bryql_algebra.dir/expr.cc.o"
  "CMakeFiles/bryql_algebra.dir/expr.cc.o.d"
  "CMakeFiles/bryql_algebra.dir/predicate.cc.o"
  "CMakeFiles/bryql_algebra.dir/predicate.cc.o.d"
  "CMakeFiles/bryql_algebra.dir/simplifier.cc.o"
  "CMakeFiles/bryql_algebra.dir/simplifier.cc.o.d"
  "libbryql_algebra.a"
  "libbryql_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bryql_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
