file(REMOVE_RECURSE
  "libbryql_algebra.a"
)
