
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calculus/analysis.cc" "src/calculus/CMakeFiles/bryql_calculus.dir/analysis.cc.o" "gcc" "src/calculus/CMakeFiles/bryql_calculus.dir/analysis.cc.o.d"
  "/root/repo/src/calculus/formula.cc" "src/calculus/CMakeFiles/bryql_calculus.dir/formula.cc.o" "gcc" "src/calculus/CMakeFiles/bryql_calculus.dir/formula.cc.o.d"
  "/root/repo/src/calculus/parser.cc" "src/calculus/CMakeFiles/bryql_calculus.dir/parser.cc.o" "gcc" "src/calculus/CMakeFiles/bryql_calculus.dir/parser.cc.o.d"
  "/root/repo/src/calculus/range_analysis.cc" "src/calculus/CMakeFiles/bryql_calculus.dir/range_analysis.cc.o" "gcc" "src/calculus/CMakeFiles/bryql_calculus.dir/range_analysis.cc.o.d"
  "/root/repo/src/calculus/views.cc" "src/calculus/CMakeFiles/bryql_calculus.dir/views.cc.o" "gcc" "src/calculus/CMakeFiles/bryql_calculus.dir/views.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bryql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
