# Empty compiler generated dependencies file for bryql_calculus.
# This may be replaced when dependencies are built.
