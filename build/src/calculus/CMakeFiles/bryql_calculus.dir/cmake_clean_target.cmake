file(REMOVE_RECURSE
  "libbryql_calculus.a"
)
