file(REMOVE_RECURSE
  "CMakeFiles/bryql_calculus.dir/analysis.cc.o"
  "CMakeFiles/bryql_calculus.dir/analysis.cc.o.d"
  "CMakeFiles/bryql_calculus.dir/formula.cc.o"
  "CMakeFiles/bryql_calculus.dir/formula.cc.o.d"
  "CMakeFiles/bryql_calculus.dir/parser.cc.o"
  "CMakeFiles/bryql_calculus.dir/parser.cc.o.d"
  "CMakeFiles/bryql_calculus.dir/range_analysis.cc.o"
  "CMakeFiles/bryql_calculus.dir/range_analysis.cc.o.d"
  "CMakeFiles/bryql_calculus.dir/views.cc.o"
  "CMakeFiles/bryql_calculus.dir/views.cc.o.d"
  "libbryql_calculus.a"
  "libbryql_calculus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bryql_calculus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
