# Empty compiler generated dependencies file for bryql_core.
# This may be replaced when dependencies are built.
