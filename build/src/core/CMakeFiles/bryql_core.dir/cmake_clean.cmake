file(REMOVE_RECURSE
  "CMakeFiles/bryql_core.dir/query_processor.cc.o"
  "CMakeFiles/bryql_core.dir/query_processor.cc.o.d"
  "libbryql_core.a"
  "libbryql_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bryql_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
