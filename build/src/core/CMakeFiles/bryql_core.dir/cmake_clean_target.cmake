file(REMOVE_RECURSE
  "libbryql_core.a"
)
