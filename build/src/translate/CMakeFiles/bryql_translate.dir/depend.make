# Empty dependencies file for bryql_translate.
# This may be replaced when dependencies are built.
