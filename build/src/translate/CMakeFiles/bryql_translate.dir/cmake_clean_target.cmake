file(REMOVE_RECURSE
  "libbryql_translate.a"
)
