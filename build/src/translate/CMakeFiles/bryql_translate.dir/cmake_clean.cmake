file(REMOVE_RECURSE
  "CMakeFiles/bryql_translate.dir/classical_translator.cc.o"
  "CMakeFiles/bryql_translate.dir/classical_translator.cc.o.d"
  "CMakeFiles/bryql_translate.dir/translator.cc.o"
  "CMakeFiles/bryql_translate.dir/translator.cc.o.d"
  "libbryql_translate.a"
  "libbryql_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bryql_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
